//! Deterministic pseudo-random numbers for simulation internals.
//!
//! Workload crates use `rand` with fixed seeds; the engine and device models
//! use this tiny SplitMix64 so their determinism does not depend on the
//! `rand` crate's version-to-version stream stability.

/// SplitMix64 generator (Steele, Lea, Flood 2014). Passes BigCrush for the
/// purposes of jitter/perturbation modelling; not cryptographic.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded constructor; any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping (Lemire); bias is negligible
        // for the modelling uses here.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let v = r.next_below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(4242);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
