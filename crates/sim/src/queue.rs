//! The global event queue.
//!
//! A Vec-backed binary min-heap keyed by `(time, sequence)` where the
//! sequence number is a monotonically increasing insertion counter. Two
//! events scheduled for the same virtual instant are therefore delivered in
//! the order they were scheduled, which makes the whole simulation
//! deterministic.
//!
//! The heap is hand-rolled (rather than `std::collections::BinaryHeap`) so
//! the scheduler hot path gets a branch-light `O(1)` [`EventQueue::peek_time`],
//! a combined [`EventQueue::pop_due`] peek-and-pop, and a backing buffer whose
//! capacity survives drain/refill cycles ([`EventQueue::clear`] keeps the
//! allocation).

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Min-heap of timestamped events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    next_seq: u64,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            next_seq: 0,
            peak: 0,
        }
    }

    /// An empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            next_seq: 0,
            peak: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
        }
        self.sift_up(self.heap.len() - 1);
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let e = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((e.time, e.event))
    }

    /// Remove and return the earliest event **iff** it is due at or before
    /// `limit` — the scheduler's peek-then-pop collapsed into one call.
    #[inline]
    pub fn pop_due(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self.heap.first() {
            Some(e) if e.time <= limit => self.pop(),
            _ => None,
        }
    }

    /// Drop all pending events, keeping the backing allocation (and the
    /// insertion counter) so a refill does not reallocate.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (insertion counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Peak occupancy ever reached (survives [`EventQueue::clear`]).
    pub fn peak(&self) -> usize {
        self.peak
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key() >= self.heap[parent].key() {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let mut smallest = l;
            if r < n && self.heap[r].key() < self.heap[l].key() {
                smallest = r;
            }
            if self.heap[smallest].key() >= self.heap[i].key() {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn pop_due_respects_limit() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop_due(t(5)), None);
        assert_eq!(q.pop_due(t(10)), Some((t(10), "a")));
        assert_eq!(q.pop_due(t(15)), None);
        assert_eq!(q.pop_due(t(25)), Some((t(20), "b")));
        assert_eq!(q.pop_due(t(1_000)), None);
    }

    #[test]
    fn random_fill_drains_sorted_and_stable() {
        // Heap order must match a stable sort by (time, seq) for arbitrary
        // interleavings — the determinism contract of the whole engine.
        let mut rng = SplitMix64::new(0xDECAF);
        for round in 0..20 {
            let mut q = EventQueue::with_capacity(64);
            let n = 1 + (rng.next_below(200) as usize);
            let mut expect: Vec<(SimTime, u64)> = Vec::new();
            for i in 0..n as u64 {
                let at = SimTime(rng.next_below(50));
                q.push(at, i);
                expect.push((at, i));
            }
            expect.sort_by_key(|&(at, i)| (at, i));
            let got: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(got, expect, "round {round}");
        }
    }

    #[test]
    fn peak_tracks_the_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak(), 0);
        q.push(t(1), 0);
        q.push(t(2), 1);
        q.pop();
        q.push(t(3), 2);
        assert_eq!(q.peak(), 2, "pop then push stays at the high-water mark");
        q.clear();
        assert_eq!(q.peak(), 2, "peak survives clear");
    }

    #[test]
    fn clear_keeps_capacity_and_counter() {
        let mut q = EventQueue::with_capacity(4);
        for i in 0..10 {
            q.push(t(i), i);
        }
        let cap = q.heap.capacity();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.heap.capacity(), cap);
        assert_eq!(q.scheduled_total(), 10, "seq counter survives clear");
        q.push(t(1), 99);
        assert_eq!(q.pop(), Some((t(1), 99)));
    }
}
