//! The global event queue.
//!
//! A hierarchical timing wheel keyed by `(time, sequence)` where the
//! sequence number is a monotonically increasing insertion counter. Two
//! events scheduled for the same virtual instant are therefore delivered in
//! the order they were scheduled, which makes the whole simulation
//! deterministic.
//!
//! Layout: a sorted `due` buffer holds the events of the earliest non-empty
//! slot (global minimum always at its tail, so [`EventQueue::peek_time`] and
//! [`EventQueue::pop`] are `O(1)`); two wheel levels of 256 slots each cover
//! ~262 µs at ~1 µs granularity (level 0) and ~67 ms at ~262 µs granularity
//! (level 1); everything beyond the level-1 horizon parks in a binary-heap
//! overflow level and is cascaded in as the cursor reaches it. Occupancy
//! bitmaps make the slot scans branch-light, and [`EventQueue::clear`] keeps
//! every backing allocation (and the insertion counter) so drain/refill
//! cycles do not reallocate.
//!
//! The pop order is exactly the `(time, seq)` min-heap order of the previous
//! binary-heap implementation — `random_fill_drains_sorted_and_stable` and
//! `wheel_matches_reference_heap` below pin that equivalence.

use crate::time::SimTime;

/// log2 of the level-0 slot granularity in nanoseconds (1024 ns ≈ 1 µs).
const SHIFT0: u32 = 10;
/// log2 of the slot count per wheel level.
const LOG_SLOTS: u32 = 8;
/// Slots per wheel level.
const SLOTS: usize = 1 << LOG_SLOTS;
/// Physical-slot mask.
const MASK: u64 = (SLOTS as u64) - 1;
/// log2 of the level-1 slot granularity in nanoseconds (one full level-0 span).
const SHIFT1: u32 = SHIFT0 + LOG_SLOTS;
/// Words in a per-level occupancy bitmap.
const OCC_WORDS: usize = SLOTS / 64;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Running counters describing how the wheel routed and surfaced events —
/// published by the engine as the `sim.wheel.*` metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Pushes that landed directly in the sorted `due` buffer.
    pub push_due: u64,
    /// Pushes routed to a level-0 wheel slot.
    pub push_l0: u64,
    /// Pushes routed to a level-1 wheel slot.
    pub push_l1: u64,
    /// Pushes parked in the far-future overflow heap.
    pub push_overflow: u64,
    /// Level-1 → level-0 slot cascades (overflow drains included).
    pub cascades: u64,
}

/// Min-queue of timestamped events with FIFO tie-breaking.
pub struct EventQueue<E> {
    /// Events of the earliest slot, sorted *descending* by `(time, seq)` so
    /// the global minimum is `due.last()`.
    due: Vec<Entry<E>>,
    /// Exclusive upper bound on the times `due` is responsible for; wheel
    /// and overflow events are all `>= due_limit`.
    due_limit: SimTime,
    /// Absolute level-0 slot index of `due_limit` (cursor).
    cur_slot0: u64,
    /// Highest absolute level-1 slot whose wheel-1 entries and overflow
    /// events have been cascaded into level 0.
    cascaded1: u64,
    wheel0: Vec<Vec<Entry<E>>>,
    wheel1: Vec<Vec<Entry<E>>>,
    occ0: [u64; OCC_WORDS],
    occ1: [u64; OCC_WORDS],
    len0: usize,
    len1: usize,
    /// Far-future overflow: hand-rolled binary min-heap on `(time, seq)`.
    overflow: Vec<Entry<E>>,
    next_seq: u64,
    peak: usize,
    stats: WheelStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bit_set(occ: &mut [u64; OCC_WORDS], slot: usize) {
    occ[slot / 64] |= 1u64 << (slot % 64);
}

#[inline]
fn bit_clear(occ: &mut [u64; OCC_WORDS], slot: usize) {
    occ[slot / 64] &= !(1u64 << (slot % 64));
}

/// First set bit at physical index `>= from`, scanning upward (no wrap).
#[inline]
fn first_set_from(occ: &[u64; OCC_WORDS], from: usize) -> Option<usize> {
    let mut w = from / 64;
    let mut word = occ[w] & (u64::MAX << (from % 64));
    loop {
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
        w += 1;
        if w >= OCC_WORDS {
            return None;
        }
        word = occ[w];
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            due: Vec::new(),
            due_limit: SimTime::ZERO,
            cur_slot0: 0,
            cascaded1: 0,
            wheel0: (0..SLOTS).map(|_| Vec::new()).collect(),
            wheel1: (0..SLOTS).map(|_| Vec::new()).collect(),
            occ0: [0; OCC_WORDS],
            occ1: [0; OCC_WORDS],
            len0: 0,
            len1: 0,
            overflow: Vec::new(),
            next_seq: 0,
            peak: 0,
            stats: WheelStats::default(),
        }
    }

    /// An empty queue with room for `cap` events in the front buffer and the
    /// overflow level before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.due = Vec::with_capacity(cap);
        q.overflow = Vec::with_capacity(cap);
        q
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(at, seq, event);
    }

    /// Schedule `event` with an externally assigned sequence number.
    ///
    /// The sharded engine runs one wheel per shard under a single global
    /// insertion counter, so the W-way merge across wheels pops in exactly
    /// the serial `(time, seq)` total order. The internal counter is left
    /// untouched (the caller owns sequencing); `seq` values may arrive out
    /// of order — every level of the wheel orders by the full key.
    pub fn push_with_seq(&mut self, at: SimTime, seq: u64, event: E) {
        self.insert(at, seq, event);
    }

    fn insert(&mut self, at: SimTime, seq: u64, event: E) {
        let e = Entry {
            time: at,
            seq,
            event,
        };
        if at < self.due_limit {
            // The cursor has already passed this event's slot: merge it into
            // the sorted front buffer (descending, so the min stays last).
            let key = e.key();
            let idx = self.due.partition_point(|d| d.key() > key);
            self.due.insert(idx, e);
            self.stats.push_due += 1;
        } else {
            self.route(e);
            if self.due.is_empty() {
                self.advance();
            }
        }
        let n = self.len();
        if n > self.peak {
            self.peak = n;
        }
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.due.last().map(|e| e.time)
    }

    /// Full `(time, seq)` key of the earliest pending event, if any — the
    /// comparison key the sharded engine's W-way merge uses to pick the
    /// globally earliest wheel head.
    #[inline]
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.due.last().map(|e| e.key())
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.due.pop()?;
        if self.due.is_empty() && !self.wheels_empty() {
            self.advance();
        }
        Some((e.time, e.event))
    }

    /// Remove and return the earliest event **iff** it is due at or before
    /// `limit` — the scheduler's peek-then-pop collapsed into one call.
    #[inline]
    pub fn pop_due(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self.due.last() {
            Some(e) if e.time <= limit => self.pop(),
            _ => None,
        }
    }

    /// Drop all pending events, keeping the backing allocations (and the
    /// insertion counter) so a refill does not reallocate.
    pub fn clear(&mut self) {
        self.due.clear();
        self.overflow.clear();
        if self.len0 > 0 {
            for s in &mut self.wheel0 {
                s.clear();
            }
        }
        if self.len1 > 0 {
            for s in &mut self.wheel1 {
                s.clear();
            }
        }
        self.occ0 = [0; OCC_WORDS];
        self.occ1 = [0; OCC_WORDS];
        self.len0 = 0;
        self.len1 = 0;
        self.due_limit = SimTime::ZERO;
        self.cur_slot0 = 0;
        self.cascaded1 = 0;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.due.len() + self.len0 + self.len1 + self.overflow.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.due.is_empty()
    }

    /// Total number of events ever scheduled (insertion counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Peak occupancy ever reached (survives [`EventQueue::clear`]).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Routing/cascade counters for the `sim.wheel.*` metrics.
    pub fn wheel_stats(&self) -> WheelStats {
        self.stats
    }

    #[inline]
    fn wheels_empty(&self) -> bool {
        self.len0 == 0 && self.len1 == 0 && self.overflow.is_empty()
    }

    /// Exclusive end (absolute level-0 slot) of the level-1 slot the cursor
    /// is in — the level-0 wheel only ever holds events up to this boundary.
    #[inline]
    fn end0(&self) -> u64 {
        ((self.cur_slot0 >> LOG_SLOTS) + 1) << LOG_SLOTS
    }

    /// File an entry at or beyond `due_limit` into the right level.
    fn route(&mut self, e: Entry<E>) {
        let abs0 = e.time.0 >> SHIFT0;
        debug_assert!(abs0 >= self.cur_slot0);
        if abs0 < self.end0() {
            let p = (abs0 & MASK) as usize;
            self.wheel0[p].push(e);
            bit_set(&mut self.occ0, p);
            self.len0 += 1;
            self.stats.push_l0 += 1;
        } else {
            let abs1 = e.time.0 >> SHIFT1;
            let cur_abs1 = self.cur_slot0 >> LOG_SLOTS;
            if abs1 < cur_abs1 + SLOTS as u64 {
                let p = (abs1 & MASK) as usize;
                self.wheel1[p].push(e);
                bit_set(&mut self.occ1, p);
                self.len1 += 1;
                self.stats.push_l1 += 1;
            } else {
                self.heap_push(e);
                self.stats.push_overflow += 1;
            }
        }
    }

    /// Cascade level-1 slot `a`'s wheel entries and overflow events into the
    /// level-0 wheel, exactly once per level-1 slot the cursor enters.
    fn enter_slot1(&mut self, a: u64) {
        if self.cascaded1 >= a {
            return;
        }
        self.cascaded1 = a;
        let p1 = (a & MASK) as usize;
        if (self.occ1[p1 / 64] >> (p1 % 64)) & 1 == 1 {
            let slot = std::mem::take(&mut self.wheel1[p1]);
            bit_clear(&mut self.occ1, p1);
            self.len1 -= slot.len();
            self.stats.cascades += 1;
            for e in slot {
                debug_assert_eq!(e.time.0 >> SHIFT1, a);
                let p = ((e.time.0 >> SHIFT0) & MASK) as usize;
                self.wheel0[p].push(e);
                bit_set(&mut self.occ0, p);
                self.len0 += 1;
            }
        }
        let bound = SimTime((a + 1) << SHIFT1);
        while self.overflow.first().is_some_and(|e| e.time < bound) {
            let e = self.heap_pop();
            debug_assert!(e.time >= self.due_limit);
            let p = ((e.time.0 >> SHIFT0) & MASK) as usize;
            self.wheel0[p].push(e);
            bit_set(&mut self.occ0, p);
            self.len0 += 1;
            self.stats.cascades += 1;
        }
    }

    /// Refill `due` with the earliest non-empty slot's events. Caller
    /// guarantees `due` is empty and at least one wheel level is not.
    fn advance(&mut self) {
        debug_assert!(self.due.is_empty());
        loop {
            let cur_abs1 = self.cur_slot0 >> LOG_SLOTS;
            // Entering a level-1 slot (including implicitly, by the level-0
            // cursor rolling over a boundary) pulls in its stragglers first.
            self.enter_slot1(cur_abs1);
            if self.len0 > 0 {
                let from = (self.cur_slot0 & MASK) as usize;
                // The window never wraps: it ends at a level-1 slot
                // boundary, i.e. physical index SLOTS.
                let p = first_set_from(&self.occ0, from)
                    .expect("len0 > 0 but no occupied slot in window");
                let abs0 = (self.cur_slot0 & !MASK) + p as u64;
                debug_assert!(abs0 >= self.cur_slot0 && abs0 < self.end0());
                std::mem::swap(&mut self.due, &mut self.wheel0[p]);
                bit_clear(&mut self.occ0, p);
                self.len0 -= self.due.len();
                // Descending sort so the minimum pops from the tail. Keys
                // are unique (seq), so unstable sort is deterministic.
                self.due
                    .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                self.cur_slot0 = abs0 + 1;
                self.due_limit = SimTime(self.cur_slot0 << SHIFT0);
                return;
            }
            // Current level-1 slot exhausted: jump to the next one holding
            // events, considering both the level-1 wheel and the overflow
            // heap (whichever is earlier).
            let mut a: Option<u64> = None;
            if self.len1 > 0 {
                let from = ((cur_abs1 + 1) & MASK) as usize;
                let p = match first_set_from(&self.occ1, from) {
                    Some(p) => p,
                    // Wrap: the window is [cur_abs1+1, cur_abs1+SLOTS).
                    None => {
                        first_set_from(&self.occ1, 0).expect("len1 > 0 but occupancy bitmap empty")
                    }
                };
                let delta = (p as u64).wrapping_sub(from as u64) & MASK;
                a = Some(cur_abs1 + 1 + delta);
            }
            if let Some(t) = self.overflow.first().map(|e| e.time) {
                let a_of = t.0 >> SHIFT1;
                a = Some(match a {
                    Some(a1) => a1.min(a_of),
                    None => a_of,
                });
            }
            let a = a.expect("advance called on an empty queue");
            debug_assert!(a > cur_abs1, "enter_slot1 already drained this slot");
            self.cur_slot0 = a << LOG_SLOTS;
            self.due_limit = SimTime(self.cur_slot0 << SHIFT0);
            // Loop back: enter_slot1(a) cascades, then the level-0 scan
            // surfaces the earliest slot.
        }
    }

    // --- overflow heap (min on (time, seq)) ------------------------------

    fn heap_push(&mut self, e: Entry<E>) {
        self.overflow.push(e);
        self.sift_up(self.overflow.len() - 1);
    }

    fn heap_pop(&mut self) -> Entry<E> {
        let last = self.overflow.len() - 1;
        self.overflow.swap(0, last);
        let e = self.overflow.pop().expect("non-empty");
        if !self.overflow.is_empty() {
            self.sift_down(0);
        }
        e
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.overflow[i].key() >= self.overflow[parent].key() {
                break;
            }
            self.overflow.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.overflow.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let mut smallest = l;
            if r < n && self.overflow[r].key() < self.overflow[l].key() {
                smallest = r;
            }
            if self.overflow[smallest].key() >= self.overflow[i].key() {
                break;
            }
            self.overflow.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn pop_due_respects_limit() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop_due(t(5)), None);
        assert_eq!(q.pop_due(t(10)), Some((t(10), "a")));
        assert_eq!(q.pop_due(t(15)), None);
        assert_eq!(q.pop_due(t(25)), Some((t(20), "b")));
        assert_eq!(q.pop_due(t(1_000)), None);
    }

    #[test]
    fn random_fill_drains_sorted_and_stable() {
        // Wheel order must match a stable sort by (time, seq) for arbitrary
        // interleavings — the determinism contract of the whole engine.
        let mut rng = SplitMix64::new(0xDECAF);
        for round in 0..20 {
            let mut q = EventQueue::with_capacity(64);
            let n = 1 + (rng.next_below(200) as usize);
            let mut expect: Vec<(SimTime, u64)> = Vec::new();
            for i in 0..n as u64 {
                let at = SimTime(rng.next_below(50));
                q.push(at, i);
                expect.push((at, i));
            }
            expect.sort_by_key(|&(at, i)| (at, i));
            let got: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(got, expect, "round {round}");
        }
    }

    /// Reference implementation: the binary heap the wheel replaced.
    struct RefHeap {
        v: Vec<(SimTime, u64)>,
        seq: u64,
    }

    impl RefHeap {
        fn new() -> Self {
            RefHeap {
                v: Vec::new(),
                seq: 0,
            }
        }
        fn push(&mut self, at: SimTime) {
            self.v.push((at, self.seq));
            self.seq += 1;
        }
        fn pop(&mut self) -> Option<(SimTime, u64)> {
            let i = self
                .v
                .iter()
                .enumerate()
                .min_by_key(|(_, &k)| k)
                .map(|(i, _)| i)?;
            Some(self.v.remove(i))
        }
    }

    #[test]
    fn wheel_matches_reference_heap() {
        // Property test across every level: times span due-buffer inserts,
        // both wheel levels, and the overflow heap, with interleaved pops.
        let mut rng = SplitMix64::new(0xBEEF_CAFE);
        for round in 0..40 {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut r = RefHeap::new();
            let ops = 1 + rng.next_below(400);
            for _ in 0..ops {
                if rng.next_below(3) == 0 && !q.is_empty() {
                    assert_eq!(q.pop(), r.pop(), "round {round}");
                } else {
                    // Mix scales: same-slot ties, level-0/1 spans, far future.
                    let at = match rng.next_below(4) {
                        0 => SimTime(rng.next_below(2_000)),
                        1 => SimTime(rng.next_below(1 << 12)),
                        2 => SimTime(rng.next_below(1 << 20)),
                        _ => SimTime(rng.next_below(1 << 34)),
                    };
                    q.push(at, r.seq);
                    r.push(at);
                }
            }
            loop {
                let got = q.pop();
                assert_eq!(got, r.pop(), "round {round} drain");
                if got.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn sharded_wheels_merge_in_serial_order() {
        // Split a random event stream across W wheels under one external
        // sequence counter; merging by peek_key must reproduce the exact
        // pop order of a single wheel fed the same stream.
        let mut rng = SplitMix64::new(0x5AAD);
        for round in 0..20 {
            let w = 2 + (round % 3) as usize;
            let mut serial: EventQueue<u64> = EventQueue::new();
            let mut wheels: Vec<EventQueue<u64>> = (0..w).map(|_| EventQueue::new()).collect();
            let n = 1 + rng.next_below(300);
            for seq in 0..n {
                let at = SimTime(rng.next_below(1 << 14));
                serial.push(at, seq);
                wheels[rng.next_below(w as u64) as usize].push_with_seq(at, seq, seq);
            }
            loop {
                let best = wheels
                    .iter()
                    .enumerate()
                    .filter_map(|(i, q)| q.peek_key().map(|k| (k, i)))
                    .min();
                match (serial.pop(), best) {
                    (Some(want), Some((_, i))) => {
                        assert_eq!(wheels[i].pop(), Some(want), "round {round}");
                    }
                    (None, None) => break,
                    (a, b) => panic!("round {round}: serial {a:?} vs merge {b:?}"),
                }
            }
        }
    }

    #[test]
    fn push_with_seq_accepts_out_of_order_sequences() {
        let mut q = EventQueue::new();
        q.push_with_seq(t(5), 7, "late");
        q.push_with_seq(t(5), 3, "early");
        q.push_with_seq(t(1), 9, "first");
        assert_eq!(q.peek_key(), Some((t(1), 9)));
        assert_eq!(q.pop(), Some((t(1), "first")));
        assert_eq!(q.pop(), Some((t(5), "early")));
        assert_eq!(q.pop(), Some((t(5), "late")));
        assert_eq!(q.scheduled_total(), 0, "external seqs leave the counter");
    }

    #[test]
    fn far_future_overflow_cascades_in_order() {
        let mut q = EventQueue::new();
        // One event per scale: due slot, level 0, level 1, overflow.
        q.push(SimTime(1 << 30), 3);
        q.push(SimTime(1 << 20), 2);
        q.push(SimTime(1 << 12), 1);
        q.push(SimTime(100), 0);
        assert!(q.wheel_stats().push_overflow >= 1);
        for i in 0..4 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert!(q.pop().is_none());
        assert!(q.wheel_stats().cascades >= 1);
    }

    #[test]
    fn peak_tracks_the_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak(), 0);
        q.push(t(1), 0);
        q.push(t(2), 1);
        q.pop();
        q.push(t(3), 2);
        assert_eq!(q.peak(), 2, "pop then push stays at the high-water mark");
        q.clear();
        assert_eq!(q.peak(), 2, "peak survives clear");
    }

    #[test]
    fn clear_keeps_capacity_and_counter() {
        let mut q = EventQueue::with_capacity(4);
        for i in 0..10 {
            q.push(t(i), i);
        }
        let cap = q.due.capacity();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.due.capacity(), cap);
        assert_eq!(q.scheduled_total(), 10, "seq counter survives clear");
        q.push(t(1), 99);
        assert_eq!(q.pop(), Some((t(1), 99)));
    }
}
