//! The global event queue.
//!
//! A binary heap keyed by `(time, sequence)` where the sequence number is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same virtual instant are therefore delivered in the order they were
//! scheduled, which makes the whole simulation deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of timestamped events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (insertion counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 3);
    }
}
