//! Minimal mutex/condvar wrappers over `std::sync`.
//!
//! The build environment for this repository is fully offline (no crates.io
//! registry), so the usual `parking_lot` dependency is replaced by these
//! shims. They expose the subset of the `parking_lot` API the engine uses —
//! non-poisoning `lock()` that returns the guard directly, `Condvar::wait`
//! on a guard, and `MutexGuard::unlocked` — implemented on `std::sync`
//! primitives. Poison errors are swallowed (`PoisonError::into_inner`):
//! simulated-process panics are already captured and rethrown as
//! [`crate::SimError::ProcPanic`], so a poisoned lock carries no extra
//! information here.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A non-poisoning mutual-exclusion lock.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            lock: self,
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// `None` only transiently inside [`MutexGuard::unlocked`] / `Condvar::wait`.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Temporarily release the lock while running `f`, then reacquire it.
    pub fn unlocked<U>(s: &mut Self, f: impl FnOnce() -> U) -> U {
        s.guard = None;
        let r = f();
        s.guard = Some(s.lock.inner.lock().unwrap_or_else(PoisonError::into_inner));
        r
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        guard.guard = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0u32));
        let mut g = m.lock();
        *g = 1;
        let m2 = m.clone();
        let got = MutexGuard::unlocked(&mut g, move || {
            // The lock must be free here.
            let v = *m2.lock();
            v + 1
        });
        assert_eq!(got, 2);
        *g += 1;
        drop(g);
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_handoff() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = shared.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "poisoning is ignored");
    }
}
