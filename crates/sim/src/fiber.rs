//! Stackful-coroutine substrate for the engine's `sm` backend.
//!
//! A *fiber* is a suspended computation: a privately owned stack plus a
//! saved stack pointer. Switching fibers saves the callee-saved register
//! file on the current stack, stores the stack pointer, and restores the
//! target's — a user-space context switch that costs tens of nanoseconds
//! instead of the microseconds of a futex round trip. The `sm` engine
//! backend hosts every simulated process on a fiber multiplexed onto the
//! *one* OS thread that called `Engine::run`, which is what lets
//! np = 1024–4096 worlds run where thread-per-rank cannot.
//!
//! This is the only module in the crate that uses `unsafe`; the rest of
//! the workspace keeps `deny(unsafe_code)`. The unsafety is confined to
//! three well-trodden pieces (the same layout `boost.context` and every
//! green-thread runtime use):
//!
//! 1. the assembly switch ([`raw_switch`]) — save callee-saved registers,
//!    swap stack pointers, restore;
//! 2. the entry trampoline — a prepared initial stack frame whose return
//!    address is a naked shim that forwards a payload pointer into
//!    [`fiber_entry`];
//! 3. raw stack allocation — stacks come from `std::alloc::alloc`
//!    **uninitialized**, so the pages are lazily committed by the kernel:
//!    4096 one-MiB stacks reserve 4 GiB of address space but only the
//!    pages a rank actually touches become resident. (`vec![0; n]` would
//!    defeat exactly that.)
//!
//! Floating-point *control* state (`mxcsr`/x87 on x86-64, `fpcr` on
//! aarch64) is not switched: nothing in this workspace changes rounding
//! or exception modes, so every fiber shares the process default.
//!
//! Safety protocol for the callers in `engine.rs`: all fibers of one
//! [`FiberSet`] are driven from a single OS thread; a switch is only
//! performed with no borrows of the set's interior outstanding; and a
//! fiber's stack is only freed after the fiber has run to completion
//! (its entry function returned control for the last time).

#![allow(unsafe_code)]

use std::alloc::{alloc, dealloc, Layout};

/// Magic word written at the low end of every stack; overwritten means the
/// fiber overflowed its stack.
const CANARY: u64 = 0x5AFE_57AC_F1BE_55AA;

/// Architectures with a [`raw_switch`] implementation.
pub const SUPPORTED: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

// ---------------------------------------------------------------------------
// The context switch.
// ---------------------------------------------------------------------------
//
// `raw_switch(save, load)` pushes the callee-saved register file onto the
// current stack, stores the resulting stack pointer through `save`, loads
// `load` as the new stack pointer, pops the register file found there and
// returns — on the target's stack, to the target's caller. From the Rust
// caller's point of view it is an ordinary `extern "C"` call that happens
// to take a long time to return; caller-saved registers are dead across
// any call per the ABI, and callee-saved registers are restored from the
// save area, so no register state leaks between fibers.

#[cfg(target_arch = "x86_64")]
#[unsafe(naked)]
unsafe extern "C" fn raw_switch(_save: *mut *mut u8, _load: *mut u8) {
    // System V AMD64: rdi = save slot, rsi = new stack pointer.
    core::arch::naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

#[cfg(target_arch = "x86_64")]
#[unsafe(naked)]
unsafe extern "C" fn fiber_trampoline() {
    // First activation of a fiber: the prepared frame placed the payload
    // pointer in r12 (restored by `raw_switch`'s pops). Realign the stack
    // and enter Rust. `fiber_entry` never returns (its final act is a
    // switch away from a completed fiber); the trap instruction documents
    // that.
    core::arch::naked_asm!(
        "mov rdi, r12",
        "and rsp, -16",
        "call {entry}",
        "ud2",
        entry = sym fiber_entry,
    )
}

#[cfg(target_arch = "aarch64")]
#[unsafe(naked)]
unsafe extern "C" fn raw_switch(_save: *mut *mut u8, _load: *mut u8) {
    // AAPCS64: x0 = save slot, x1 = new stack pointer. Callee-saved:
    // x19–x28, fp (x29), lr (x30), d8–d15 — 160 bytes, 16-aligned.
    core::arch::naked_asm!(
        "sub sp, sp, #160",
        "stp x19, x20, [sp, #0]",
        "stp x21, x22, [sp, #16]",
        "stp x23, x24, [sp, #32]",
        "stp x25, x26, [sp, #48]",
        "stp x27, x28, [sp, #64]",
        "stp x29, x30, [sp, #80]",
        "stp d8, d9, [sp, #96]",
        "stp d10, d11, [sp, #112]",
        "stp d12, d13, [sp, #128]",
        "stp d14, d15, [sp, #144]",
        "mov x2, sp",
        "str x2, [x0]",
        "mov sp, x1",
        "ldp x19, x20, [sp, #0]",
        "ldp x21, x22, [sp, #16]",
        "ldp x23, x24, [sp, #32]",
        "ldp x25, x26, [sp, #48]",
        "ldp x27, x28, [sp, #64]",
        "ldp x29, x30, [sp, #80]",
        "ldp d8, d9, [sp, #96]",
        "ldp d10, d11, [sp, #112]",
        "ldp d12, d13, [sp, #128]",
        "ldp d14, d15, [sp, #144]",
        "add sp, sp, #160",
        "ret",
    )
}

#[cfg(target_arch = "aarch64")]
#[unsafe(naked)]
unsafe extern "C" fn fiber_trampoline() {
    // First activation: the prepared frame put the payload pointer in x19
    // and this shim's address in x30 (`ret` above branches here).
    core::arch::naked_asm!(
        "mov x0, x19",
        "bl {entry}",
        "brk #0x1",
        entry = sym fiber_entry,
    )
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
unsafe extern "C" fn raw_switch(_save: *mut *mut u8, _load: *mut u8) {
    unreachable!("sm backend is gated on SUPPORTED");
}

// ---------------------------------------------------------------------------
// Stacks and entry payloads.
// ---------------------------------------------------------------------------

/// A raw, lazily committed fiber stack.
struct Stack {
    base: *mut u8,
    size: usize,
}

impl Stack {
    fn layout(size: usize) -> Layout {
        Layout::from_size_align(size, 16).expect("stack layout")
    }

    fn new(size: usize) -> Self {
        // Deliberately *uninitialized*: committing pages up front would
        // make every np=4096 world pay 4096 full stacks of resident
        // memory before a single rank runs.
        let base = unsafe { alloc(Self::layout(size)) };
        assert!(!base.is_null(), "fiber stack allocation failed");
        // The canary is the single low-end word we do initialize.
        unsafe { (base as *mut u64).write(CANARY) };
        Stack { base, size }
    }

    #[inline]
    fn top(&self) -> *mut u8 {
        // Keep the top 16-aligned (alloc guarantees base alignment and
        // size is a multiple of 16 by construction in FiberSet::new).
        unsafe { self.base.add(self.size) }
    }

    #[inline]
    fn canary_intact(&self) -> bool {
        unsafe { (self.base as *const u64).read() == CANARY }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        unsafe { dealloc(self.base, Self::layout(self.size)) };
    }
}

/// Payload handed to [`fiber_entry`] on a fiber's first activation. Boxed
/// so its address is stable while the fiber lives.
struct Entry {
    set: *const FiberSet,
    index: usize,
    /// The fiber body; `None` once taken at first activation.
    func: Option<Box<dyn FnOnce()>>,
}

/// Rust-side first activation of a fiber: run the body, then hand control
/// back to the driver forever.
unsafe extern "C" fn fiber_entry(payload: *mut Entry) {
    let (set, index, func) = unsafe {
        let e = &mut *payload;
        (e.set, e.index, e.func.take().expect("fiber body present"))
    };
    func();
    // The body returned: mark this fiber completed and switch to the
    // driver context, never to run again.
    unsafe { (*set).finish(index) };
    unreachable!("a completed fiber was resumed");
}

// ---------------------------------------------------------------------------
// The fiber set.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FiberState {
    /// Body registered, no stack yet.
    NotStarted,
    /// Suspended at a switch point, resumable.
    Parked,
    /// Currently executing (control is on its stack).
    Active,
    /// Body returned; stack freed or about to be.
    Done,
}

struct FiberSlot {
    state: FiberState,
    stack: Option<Stack>,
    /// Saved stack pointer while parked (or the prepared initial frame).
    sp: *mut u8,
    entry: Option<Box<Entry>>,
    /// High-water stack usage in bytes, sampled at every switch out.
    peak: usize,
}

/// Deterministic wall-clock statistics of one driver run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FiberStats {
    /// Fibers activated for the first time.
    pub starts: u64,
    /// Switches into an already-started fiber.
    pub resumes: u64,
    /// Switches out of a fiber at a suspension point.
    pub parks: u64,
    /// Peak concurrently allocated stacks.
    pub stacks_peak: u64,
    /// Largest observed per-fiber stack usage, bytes.
    pub stack_bytes_peak: u64,
}

/// A fixed-size set of fibers driven from one OS thread.
///
/// Exactly one context of {driver, fibers} executes at any instant; the
/// driver context is the thread that calls [`FiberSet::resume`] from
/// outside any fiber. All methods must be called on that thread.
pub struct FiberSet {
    inner: std::cell::UnsafeCell<SetInner>,
}

// One FiberSet is confined to one OS thread by the safety protocol above;
// the markers exist only so the engine's `Shared` (which is `Sync` for the
// thread backend's sake) can hold an `Option<FiberSet>`.
unsafe impl Send for FiberSet {}
unsafe impl Sync for FiberSet {}

struct SetInner {
    slots: Vec<FiberSlot>,
    /// Saved driver-context stack pointer while a fiber runs.
    driver_sp: *mut u8,
    /// Index of the executing fiber, or `usize::MAX` for the driver.
    current: usize,
    stack_size: usize,
    stacks_live: u64,
    stats: FiberStats,
}

const DRIVER: usize = usize::MAX;

impl FiberSet {
    /// A set of `n` fibers with `stack_size`-byte stacks (rounded up to a
    /// multiple of 16, floored at 32 KiB). Bodies are registered with
    /// [`FiberSet::set_body`]; stacks are allocated lazily at first resume.
    pub fn new(n: usize, stack_size: usize) -> Self {
        if !SUPPORTED {
            panic!("fiber backend unsupported on this architecture");
        }
        let stack_size = stack_size.max(32 << 10).next_multiple_of(16);
        FiberSet {
            inner: std::cell::UnsafeCell::new(SetInner {
                slots: (0..n)
                    .map(|_| FiberSlot {
                        state: FiberState::NotStarted,
                        stack: None,
                        sp: std::ptr::null_mut(),
                        entry: None,
                        peak: 0,
                    })
                    .collect(),
                driver_sp: std::ptr::null_mut(),
                current: DRIVER,
                stack_size,
                stacks_live: 0,
                stats: FiberStats::default(),
            }),
        }
    }

    /// Register fiber `i`'s body. Must be called before its first resume.
    pub fn set_body(&self, i: usize, f: Box<dyn FnOnce()>) {
        let inner = unsafe { &mut *self.inner.get() };
        let set_ptr = self as *const FiberSet;
        inner.slots[i].entry = Some(Box::new(Entry {
            set: set_ptr,
            index: i,
            func: Some(f),
        }));
    }

    /// True when fiber `i` has run to completion.
    #[cfg(test)]
    pub fn is_done(&self, i: usize) -> bool {
        let inner = unsafe { &*self.inner.get() };
        inner.slots[i].state == FiberState::Done
    }

    /// True when fiber `i` has never run.
    pub fn not_started(&self, i: usize) -> bool {
        let inner = unsafe { &*self.inner.get() };
        inner.slots[i].state == FiberState::NotStarted
    }

    /// Abandon fiber `i` without ever starting it (drops its body). Only
    /// legal while `not_started`.
    pub fn abandon(&self, i: usize) {
        let inner = unsafe { &mut *self.inner.get() };
        let slot = &mut inner.slots[i];
        assert_eq!(
            slot.state,
            FiberState::NotStarted,
            "abandon a started fiber"
        );
        slot.state = FiberState::Done;
        slot.entry = None;
    }

    /// Transfer control to fiber `to`, suspending the calling context
    /// (driver or another fiber) until something switches back. Allocates
    /// `to`'s stack on first activation; frees stacks of completed fibers
    /// whenever the driver context is the caller.
    pub fn resume(&self, to: usize) {
        let (save, load) = {
            let inner = unsafe { &mut *self.inner.get() };
            let from = inner.current;
            if from == DRIVER {
                // Cheap housekeeping point: completed fibers' stacks are
                // only freed from the driver, never from a fiber that
                // might be standing on one.
                Self::sweep(inner);
            } else {
                Self::note_park(inner, from);
            }
            let to_slot = &mut inner.slots[to];
            match to_slot.state {
                FiberState::NotStarted => {
                    let stack = Stack::new(inner.stack_size);
                    to_slot.sp = prepare_frame(
                        stack.top(),
                        to_slot
                            .entry
                            .as_mut()
                            .expect("fiber body registered")
                            .as_mut(),
                    );
                    to_slot.stack = Some(stack);
                    to_slot.state = FiberState::Active;
                    inner.stacks_live += 1;
                    inner.stats.stacks_peak = inner.stats.stacks_peak.max(inner.stacks_live);
                    inner.stats.starts += 1;
                }
                FiberState::Parked => {
                    to_slot.state = FiberState::Active;
                    inner.stats.resumes += 1;
                }
                FiberState::Active | FiberState::Done => {
                    panic!("resume of a {:?} fiber", to_slot.state)
                }
            }
            let load = inner.slots[to].sp;
            inner.current = to;
            let save: *mut *mut u8 = if from == DRIVER {
                &mut inner.driver_sp
            } else {
                inner.slots[from].state = FiberState::Parked;
                &mut inner.slots[from].sp
            };
            (save, load)
            // Borrow of `inner` ends here; the switch below must not hold
            // one (the resumed context will re-borrow).
        };
        unsafe { raw_switch(save, load) };
        // Control returned to this context: someone set `current` back to
        // us before switching. Nothing to do — the caller continues.
    }

    /// Transfer control from the executing fiber back to the driver
    /// context.
    pub fn yield_to_driver(&self) {
        let (save, load) = {
            let inner = unsafe { &mut *self.inner.get() };
            let from = inner.current;
            assert_ne!(from, DRIVER, "yield_to_driver from the driver");
            Self::note_park(inner, from);
            inner.slots[from].state = FiberState::Parked;
            inner.current = DRIVER;
            let save: *mut *mut u8 = &mut inner.slots[from].sp;
            (save, inner.driver_sp)
        };
        unsafe { raw_switch(save, load) };
    }

    /// Called by [`fiber_entry`] when a fiber's body returns: mark it done
    /// and hand control to the driver forever.
    unsafe fn finish(&self, i: usize) {
        let (save, load) = {
            let inner = unsafe { &mut *self.inner.get() };
            debug_assert_eq!(inner.current, i);
            Self::note_park(inner, i);
            inner.slots[i].state = FiberState::Done;
            inner.slots[i].entry = None;
            inner.current = DRIVER;
            // The stack we are standing on is freed later, by the driver
            // (see `sweep`).
            let save: *mut *mut u8 = &mut inner.slots[i].sp;
            (save, inner.driver_sp)
        };
        unsafe { raw_switch(save, load) };
        unreachable!("a completed fiber was resumed");
    }

    /// Record the outgoing fiber's stack depth and check its canary.
    fn note_park(inner: &mut SetInner, i: usize) {
        inner.stats.parks += 1;
        let slot = &mut inner.slots[i];
        if let Some(stack) = &slot.stack {
            // Approximate the live depth with the address of a local.
            let probe = 0u8;
            let depth = (stack.top() as usize).saturating_sub(&probe as *const u8 as usize);
            if depth > slot.peak {
                slot.peak = depth;
                let d = depth as u64;
                if d > inner.stats.stack_bytes_peak {
                    inner.stats.stack_bytes_peak = d;
                }
            }
            assert!(
                stack.canary_intact(),
                "fiber {i} overflowed its {}-byte stack; raise VIAMPI_SM_STACK",
                stack.size,
            );
        }
    }

    /// Free the stacks of completed fibers (driver context only).
    fn sweep(inner: &mut SetInner) {
        for slot in &mut inner.slots {
            if slot.state == FiberState::Done && slot.stack.is_some() {
                slot.stack = None;
                inner.stacks_live -= 1;
            }
        }
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> FiberStats {
        let inner = unsafe { &*self.inner.get() };
        inner.stats
    }

    /// Drop every remaining body and stack. Must be called from the driver
    /// context with no fiber active; used before tearing the set down so
    /// no `Entry` (and nothing it captured) outlives the run.
    pub fn clear(&self) {
        let inner = unsafe { &mut *self.inner.get() };
        assert_eq!(inner.current, DRIVER, "clear with a fiber active");
        for slot in &mut inner.slots {
            assert_ne!(slot.state, FiberState::Active);
            if slot.state == FiberState::Parked {
                // A parked fiber would leak its stack contents' owners;
                // the engine guarantees teardown unwinds every fiber
                // before clearing.
                panic!("clear with a parked fiber");
            }
            slot.entry = None;
            if slot.stack.take().is_some() {
                inner.stacks_live -= 1;
            }
        }
    }
}

/// Build the initial stack frame for a fiber so that the first
/// [`raw_switch`] into it lands in [`fiber_trampoline`] with the payload
/// pointer in the designated callee-saved register.
#[cfg(target_arch = "x86_64")]
fn prepare_frame(top: *mut u8, entry: &mut Entry) -> *mut u8 {
    unsafe {
        let mut sp = top as *mut u64;
        // Slot for alignment + a null "return address" above the
        // trampoline (never used; `fiber_trampoline` realigns and traps).
        sp = sp.sub(1);
        sp.write(0);
        sp = sp.sub(1);
        sp.write(fiber_trampoline as *const () as usize as u64); // popped by `ret`
        sp = sp.sub(1);
        sp.write(0); // rbp
        sp = sp.sub(1);
        sp.write(0); // rbx
        sp = sp.sub(1);
        sp.write(entry as *mut Entry as usize as u64); // r12 = payload
        sp = sp.sub(1);
        sp.write(0); // r13
        sp = sp.sub(1);
        sp.write(0); // r14
        sp = sp.sub(1);
        sp.write(0); // r15
        sp as *mut u8
    }
}

#[cfg(target_arch = "aarch64")]
fn prepare_frame(top: *mut u8, entry: &mut Entry) -> *mut u8 {
    unsafe {
        // One 160-byte register frame, laid out as `raw_switch` expects.
        let sp = top.sub(160);
        std::ptr::write_bytes(sp, 0, 160);
        let words = sp as *mut u64;
        words.write(entry as *mut Entry as usize as u64); // x19 = payload
        words.add(11).write(fiber_trampoline as usize as u64); // x30 = lr
        sp
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn prepare_frame(_top: *mut u8, _entry: &mut Entry) -> *mut u8 {
    unreachable!("fiber backend unsupported on this architecture");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn ping_pong_between_two_fibers() {
        let set = Rc::new(FiberSet::new(2, 64 << 10));
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2 {
            let set2 = set.clone();
            let log2 = log.clone();
            set.set_body(
                i,
                Box::new(move || {
                    for step in 0..3 {
                        log2.borrow_mut().push((i, step));
                        set2.yield_to_driver();
                    }
                }),
            );
        }
        // Round-robin drive until both are done.
        while !(set.is_done(0) && set.is_done(1)) {
            for i in 0..2 {
                if !set.is_done(i) {
                    set.resume(i);
                }
            }
        }
        assert_eq!(
            *log.borrow(),
            vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
        );
        let st = set.stats();
        assert_eq!(st.starts, 2);
        assert_eq!(st.resumes, 6, "three yields each; the last resume finishes");
        set.clear();
    }

    #[test]
    fn fiber_to_fiber_direct_handoff() {
        let set = Rc::new(FiberSet::new(2, 64 << 10));
        let log = Rc::new(RefCell::new(Vec::new()));
        let (s0, l0) = (set.clone(), log.clone());
        set.set_body(
            0,
            Box::new(move || {
                l0.borrow_mut().push("a0");
                s0.resume(1); // direct switch, not through the driver
                l0.borrow_mut().push("a1");
            }),
        );
        let l1 = log.clone();
        set.set_body(
            1,
            Box::new(move || {
                l1.borrow_mut().push("b0");
            }),
        );
        set.resume(0); // a0, handoff, b0, finish -> driver
        assert!(set.is_done(1));
        assert!(!set.is_done(0));
        set.resume(0); // a1, finish
        assert!(set.is_done(0));
        assert_eq!(*log.borrow(), vec!["a0", "b0", "a1"]);
        set.clear();
    }

    #[test]
    fn lazy_stacks_and_abandon() {
        let set = FiberSet::new(3, 64 << 10);
        set.set_body(0, Box::new(|| {}));
        set.set_body(1, Box::new(|| {}));
        set.set_body(2, Box::new(|| {}));
        assert!(set.not_started(2));
        set.abandon(2);
        assert!(set.is_done(2));
        set.resume(0);
        set.resume(1);
        let st = set.stats();
        assert_eq!(st.starts, 2, "abandoned fiber never got a stack");
        assert!(st.stack_bytes_peak > 0);
        set.clear();
    }

    #[test]
    fn panics_unwind_inside_the_fiber() {
        let set = Rc::new(FiberSet::new(1, 64 << 10));
        let caught = Rc::new(RefCell::new(false));
        let c2 = caught.clone();
        set.set_body(
            0,
            Box::new(move || {
                let r = std::panic::catch_unwind(|| panic!("inside fiber"));
                *c2.borrow_mut() = r.is_err();
            }),
        );
        set.resume(0);
        assert!(set.is_done(0));
        assert!(*caught.borrow(), "panic was caught on the fiber stack");
        set.clear();
    }

    #[test]
    fn deep_call_chains_record_stack_usage() {
        // Depth is sampled at suspension points, so park at the bottom of
        // the recursion (exactly how engine ranks park deep inside call
        // stacks).
        fn burn(set: &FiberSet, n: usize) -> u64 {
            let pad = [n as u64; 32];
            if n == 0 {
                set.yield_to_driver();
                pad.iter().sum()
            } else {
                burn(set, n - 1) + std::hint::black_box(pad)[0]
            }
        }
        let set = Rc::new(FiberSet::new(1, 256 << 10));
        let s2 = set.clone();
        set.set_body(
            0,
            Box::new(move || {
                std::hint::black_box(burn(&s2, 64));
            }),
        );
        set.resume(0); // runs to the bottom, parks
        set.resume(0); // unwinds and finishes
        let st = set.stats();
        assert!(
            st.stack_bytes_peak >= 64 * 32 * 8,
            "peak {} must reflect the recursion",
            st.stack_bytes_peak
        );
        set.clear();
    }
}
