//! Virtual time primitives.
//!
//! The engine measures time in integer **nanoseconds** so that simulations
//! are exactly reproducible across platforms (no floating-point drift in the
//! event queue ordering). Device models that compute fractional costs (e.g.
//! `bytes / bandwidth`) round to the nearest nanosecond at the boundary.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch, as a float (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn micros_f64(us: f64) -> SimDuration {
        if !us.is_finite() || us <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn secs_f64(s: f64) -> SimDuration {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1_000_000_000.0).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, as a float.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Scale by an integer factor.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let t2 = t + SimDuration::nanos(250);
        assert_eq!((t2 - t).as_nanos(), 250);
        assert_eq!(t2.since(t).as_nanos(), 250);
        assert_eq!(t.since(t2), SimDuration::ZERO, "since saturates");
    }

    #[test]
    fn fractional_constructors_round() {
        assert_eq!(SimDuration::micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::micros_f64(0.0004).as_nanos(), 0);
        assert_eq!(SimDuration::micros_f64(0.0006).as_nanos(), 1);
        assert_eq!(SimDuration::secs_f64(2.0).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn fractional_constructors_clamp_garbage() {
        assert_eq!(SimDuration::micros_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::micros_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::micros(3);
        assert_eq!((d * 4).as_nanos(), 12_000);
        assert_eq!((d / 2).as_nanos(), 1_500);
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration(u64::MAX));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::secs_f64(1.25)), "1.250s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::micros).sum();
        assert_eq!(total, SimDuration::micros(10));
    }
}
