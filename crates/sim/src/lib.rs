//! # viampi-sim — deterministic virtual-time simulation engine
//!
//! The substrate under the whole `viampi` stack. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time;
//! * [`EventQueue`] — a `(time, sequence)`-ordered event heap;
//! * [`Engine`] / [`ProcCtx`] / [`World`] — a cooperative scheduler where
//!   every simulated process runs as its own suspendable context — an OS
//!   thread under the default `threads` backend, or a stackful coroutine
//!   multiplexed onto the driving thread under the `sm` backend
//!   ([`Backend`], `VIAMPI_ENGINE=threads|sm`) — but only one runs at a
//!   real instant, picked by smallest virtual clock; hardware activity is
//!   expressed as timestamped events handled by the [`World`];
//! * deadlock detection (the original paper's correctness arguments about
//!   connection progress are exercised by tests that *expect* deadlocks when
//!   the rules are broken);
//! * [`SplitMix64`] — a tiny deterministic RNG for device-model jitter;
//! * [`metrics`] — the cross-layer metrics registry every layer of the
//!   stack publishes into (the engine's own set lands in
//!   [`Outcome::metrics`]).
//!
//! The design follows the "sequential process-oriented discrete event
//! simulation" pattern (as in SimGrid/LogGOPSim): simulation results are a
//! pure function of the configuration, which makes every experiment in the
//! reproduction exactly repeatable.
//!
//! ## Example
//!
//! ```
//! use viampi_sim::{Engine, World, Api, SimDuration, SimTime};
//!
//! struct Counter { hits: u32 }
//! enum Ev { Hit }
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle_event(&mut self, _: Ev, _: &mut Api<'_, Ev>) { self.hits += 1; }
//! }
//!
//! let mut eng = Engine::new(Counter { hits: 0 });
//! eng.spawn("p0", |ctx| {
//!     ctx.with_world(|_, api| api.schedule(SimDuration::micros(10), Ev::Hit));
//!     ctx.advance(SimDuration::micros(20));
//! });
//! let (world, outcome) = eng.run().unwrap();
//! assert_eq!(world.hits, 1);
//! assert_eq!(outcome.end_time, SimTime(20_000));
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the `fiber` module (the sm backend's stackful
// coroutine substrate) carries the crate's only `allow(unsafe_code)`,
// with the safety protocol documented at the top of that file. Every
// other module remains unsafe-free.
#![deny(unsafe_code)]

mod engine;
mod error;
mod fiber;
pub mod metrics;
pub mod pool;
mod queue;
mod rng;
pub mod sync;
mod time;

pub use engine::{
    engine_totals, Api, Backend, Engine, EngineTotals, Outcome, ProcCtx, ProcId, World,
};
pub use error::{BlockedProc, SimError};
pub use metrics::{MetricEntry, MetricsSnapshot, Registry};
pub use pool::{BufferPool, PoolStats, PooledBuf, Slab};
pub use queue::{EventQueue, WheelStats};
pub use rng::SplitMix64;
pub use time::{SimDuration, SimTime};
