//! Cross-layer metrics registry.
//!
//! Every layer of the stack (engine, fabric/NIC, MPI device) publishes its
//! counters into a [`Registry`]: a statically registered, index-addressed
//! store of typed metrics — monotone counters, point-in-time gauges and
//! log₂-bucket histograms. Registration is static: a layer declares its
//! metric set once with [`metric_defs!`], which yields typed handles
//! ([`CounterId`]/[`GaugeId`]/[`HistId`]) and the definition tables a
//! registry is built from, so every update is a bounds-checked vector index
//! — no hashing, no locks, no allocation on the update path.
//!
//! Everything is virtual-time aware by construction: values are only ever
//! driven by simulation activity, so a [`MetricsSnapshot`] is as
//! deterministic as the run that produced it — identical across repeat
//! runs, worker counts, and the engine's fast-path setting. A registry
//! built with [`Registry::disabled`] turns every update into an early-out
//! no-op and holds no storage at all.
//!
//! Snapshots from different layers (and different ranks) compose: each
//! entry carries its cross-registry merge rule ([`MergeOp`]), so per-rank
//! snapshots fold into the flat per-run snapshot exposed by the `core`
//! crate's `RunReport`.

/// Static description of one metric, produced by [`metric_defs!`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// Dotted metric name (`layer.metric`), unique within its registry.
    pub name: &'static str,
    /// One-line human description.
    pub help: &'static str,
}

/// Typed handle of a registered counter (index into the counter table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Typed handle of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Typed handle of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(u32);

impl CounterId {
    /// Handle for the counter registered at `idx` (use via [`metric_defs!`]).
    pub const fn new(idx: u32) -> Self {
        CounterId(idx)
    }
}

impl GaugeId {
    /// Handle for the gauge registered at `idx` (use via [`metric_defs!`]).
    pub const fn new(idx: u32) -> Self {
        GaugeId(idx)
    }
}

impl HistId {
    /// Handle for the histogram registered at `idx` (use via [`metric_defs!`]).
    pub const fn new(idx: u32) -> Self {
        HistId(idx)
    }
}

/// Declare a metric set: generates one typed handle constant per metric
/// plus `COUNTER_DEFS` / `GAUGE_DEFS` / `HIST_DEFS` tables in registration
/// order and a `registry()` constructor. Invoke inside a dedicated module:
///
/// ```
/// pub mod my_metrics {
///     viampi_sim::metric_defs! {
///         counters { HITS => "demo.hits": "Times the demo path ran" }
///         gauges { DEPTH => "demo.depth": "Current queue depth" }
///         hists { BYTES => "demo.bytes": "Payload size distribution" }
///     }
/// }
/// let mut reg = my_metrics::registry();
/// reg.inc(my_metrics::HITS);
/// assert_eq!(reg.counter(my_metrics::HITS), 1);
/// ```
#[macro_export]
macro_rules! metric_defs {
    (
        counters { $($cid:ident => $cname:literal : $chelp:literal),* $(,)? }
        gauges { $($gid:ident => $gname:literal : $ghelp:literal),* $(,)? }
        hists { $($hid:ident => $hname:literal : $hhelp:literal),* $(,)? }
    ) => {
        #[allow(non_camel_case_types, dead_code, clippy::upper_case_acronyms)]
        enum __CounterIdx { $($cid),* }
        #[allow(non_camel_case_types, dead_code, clippy::upper_case_acronyms)]
        enum __GaugeIdx { $($gid),* }
        #[allow(non_camel_case_types, dead_code, clippy::upper_case_acronyms)]
        enum __HistIdx { $($hid),* }

        $(
            #[doc = $chelp]
            pub const $cid: $crate::metrics::CounterId =
                $crate::metrics::CounterId::new(__CounterIdx::$cid as u32);
        )*
        $(
            #[doc = $ghelp]
            pub const $gid: $crate::metrics::GaugeId =
                $crate::metrics::GaugeId::new(__GaugeIdx::$gid as u32);
        )*
        $(
            #[doc = $hhelp]
            pub const $hid: $crate::metrics::HistId =
                $crate::metrics::HistId::new(__HistIdx::$hid as u32);
        )*

        /// Counter definitions, in registration order.
        pub const COUNTER_DEFS: &[$crate::metrics::MetricDef] = &[
            $($crate::metrics::MetricDef { name: $cname, help: $chelp }),*
        ];
        /// Gauge definitions, in registration order.
        pub const GAUGE_DEFS: &[$crate::metrics::MetricDef] = &[
            $($crate::metrics::MetricDef { name: $gname, help: $ghelp }),*
        ];
        /// Histogram definitions, in registration order.
        pub const HIST_DEFS: &[$crate::metrics::MetricDef] = &[
            $($crate::metrics::MetricDef { name: $hname, help: $hhelp }),*
        ];

        /// A fresh enabled registry over this metric set.
        pub fn registry() -> $crate::metrics::Registry {
            $crate::metrics::Registry::new(COUNTER_DEFS, GAUGE_DEFS, HIST_DEFS)
        }
    };
}

/// The engine's own metric set (`crates/sim` publishes here at the end of
/// every run; see `Outcome::metrics`).
pub mod engine {
    crate::metric_defs! {
        counters {
            HANDOFFS => "sim.handoffs": "Scheduler token grants, including fast-path self-resumes",
            EVENTS => "sim.events": "World events processed",
            FAST_RESUMES => "sim.fast_resumes": "Token passes short-circuited by the self-resume fast path",
            EVENTS_SCHEDULED => "sim.events_scheduled": "Events ever pushed on the event queue",
            COALESCE_ADVANCES => "sim.coalesce.advances": "advance() calls absorbed into deferred compute clocks",
            COALESCE_FLUSHES => "sim.coalesce.flushes": "Deferred compute stretches flushed as one authoritative advance",
            DIRECT_HANDOFFS => "sim.direct.handoffs": "Token grants performed inline by the yielding process",
            DIRECT_SELF => "sim.direct.self_resumes": "Inline decisions that returned the token to the caller after event processing",
            PAR_PRE_RELEASES => "sim.par.pre_releases": "Processes released to run ahead inside the lookahead window",
            PAR_PROMOTIONS => "sim.par.promotions": "Pre-released processes promoted to token holder",
            SM_POLLS => "sim.sm.polls": "Scheduling decisions taken by the state-machine backend's driver paths",
            SM_PARKS => "sim.sm.parks": "Fiber suspensions under the state-machine backend",
            SM_RESUMES => "sim.sm.resumes": "Fiber activations (first starts and resumes) under the state-machine backend",
            SHARD_LBTS_ROUNDS => "sim.shard.lbts_rounds": "Lower-bound-timestamp merge rounds taken by the sharded scheduler",
            SHARD_CROSS_SENDS => "sim.shard.cross_sends": "Events routed across shards through SPSC mailboxes",
            SHARD_STALLS => "sim.shard.stalls": "Shards observed blocked past the lookahead horizon during LBTS rounds",
            WHEEL_DUE => "sim.wheel.push_due": "Events merged straight into the sorted due buffer",
            WHEEL_L0 => "sim.wheel.push_l0": "Events filed in a level-0 wheel slot",
            WHEEL_L1 => "sim.wheel.push_l1": "Events filed in a level-1 wheel slot",
            WHEEL_OVERFLOW => "sim.wheel.push_overflow": "Events parked in the far-future overflow heap",
            WHEEL_CASCADES => "sim.wheel.cascades": "Level-1/overflow slot cascades into level 0",
        }
        gauges {
            READY_PEAK => "sim.ready_peak": "Peak ready-heap depth",
            QUEUE_PEAK => "sim.queue_peak": "Peak event-queue occupancy",
            PAR_WORKERS => "sim.par.workers": "Configured maximum concurrently-executing processes",
            SHARD_MAILBOX_PEAK => "sim.shard.mailbox_peak": "Peak number of in-flight cross-shard mailbox events",
            SHARD_WORKERS => "sim.shard.workers": "Effective shard count of the run (1 when serial)",
            SM_RANK_MEM_PEAK => "sim.sm.rank_mem_peak": "Largest per-rank fiber stack usage in bytes (state-machine backend)",
        }
        hists {}
    }
}

/// Counters of the simcheck campaign engine (seed sweeps, coverage-directed
/// exploration, violation shrinking). Summed across shards into the campaign
/// summary JSON.
pub mod campaign {
    crate::metric_defs! {
        counters {
            SEEDS_RUN => "sim.campaign.seeds_run": "Scenario keys executed (roots, children and shrink probes)",
            COVERAGE_SIGNATURES => "sim.campaign.coverage_signatures": "Distinct coverage signatures in the cumulative map",
            DERIVED_SEEDS => "sim.campaign.derived_seeds": "Child keys spawned from rare-signature hits",
            SHRINK_STEPS => "sim.campaign.shrink_steps": "Shrink candidate runs attempted while minimizing violations",
            VIOLATIONS => "sim.campaign.violations": "Violating scenario keys found (pre-shrink)",
        }
        gauges {}
        hists {}
    }
}

/// One log₂-bucket histogram: `buckets[i]` counts observations whose value
/// has `i` significant bits (bucket 0 holds zeros).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Log₂ buckets (65 covers the full `u64` range).
    pub buckets: [u64; 65],
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; 65],
        }
    }

    #[inline]
    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
    }
}

/// An index-addressed store of one layer's metrics.
///
/// Built from the static definition tables of a [`metric_defs!`] set;
/// updates go through the typed handles the same macro produced. A
/// disabled registry ([`Registry::disabled`]) allocates nothing and makes
/// every update a no-op.
#[derive(Debug, Clone)]
pub struct Registry {
    enabled: bool,
    counter_defs: &'static [MetricDef],
    gauge_defs: &'static [MetricDef],
    hist_defs: &'static [MetricDef],
    counters: Vec<u64>,
    gauges: Vec<u64>,
    hists: Vec<Hist>,
}

impl Registry {
    /// An enabled registry with one slot per definition, all zero.
    pub fn new(
        counter_defs: &'static [MetricDef],
        gauge_defs: &'static [MetricDef],
        hist_defs: &'static [MetricDef],
    ) -> Self {
        Registry {
            enabled: true,
            counter_defs,
            gauge_defs,
            hist_defs,
            counters: vec![0; counter_defs.len()],
            gauges: vec![0; gauge_defs.len()],
            hists: hist_defs.iter().map(|_| Hist::new()).collect(),
        }
    }

    /// A disabled registry: no storage, every update an early-out no-op,
    /// every read zero, and an empty snapshot.
    pub fn disabled(
        counter_defs: &'static [MetricDef],
        gauge_defs: &'static [MetricDef],
        hist_defs: &'static [MetricDef],
    ) -> Self {
        Registry {
            enabled: false,
            counter_defs,
            gauge_defs,
            hist_defs,
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
        }
    }

    /// Whether updates are recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, c: CounterId) {
        self.add(c, 1);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, c: CounterId, n: u64) {
        if self.enabled {
            self.counters[c.0 as usize] += n;
        }
    }

    /// Current counter value (zero when disabled).
    #[inline]
    pub fn counter(&self, c: CounterId) -> u64 {
        if self.enabled {
            self.counters[c.0 as usize]
        } else {
            0
        }
    }

    /// Set a gauge to `v`.
    #[inline]
    pub fn gauge_set(&mut self, g: GaugeId, v: u64) {
        if self.enabled {
            self.gauges[g.0 as usize] = v;
        }
    }

    /// Add `n` to a gauge.
    #[inline]
    pub fn gauge_add(&mut self, g: GaugeId, n: u64) {
        if self.enabled {
            self.gauges[g.0 as usize] += n;
        }
    }

    /// Subtract `n` from a gauge.
    #[inline]
    pub fn gauge_sub(&mut self, g: GaugeId, n: u64) {
        if self.enabled {
            self.gauges[g.0 as usize] -= n;
        }
    }

    /// Raise a gauge to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn gauge_max(&mut self, g: GaugeId, v: u64) {
        if self.enabled {
            let slot = &mut self.gauges[g.0 as usize];
            if v > *slot {
                *slot = v;
            }
        }
    }

    /// Current gauge value (zero when disabled).
    #[inline]
    pub fn gauge(&self, g: GaugeId) -> u64 {
        if self.enabled {
            self.gauges[g.0 as usize]
        } else {
            0
        }
    }

    /// Record one observation in a histogram.
    #[inline]
    pub fn observe(&mut self, h: HistId, v: u64) {
        if self.enabled {
            self.hists[h.0 as usize].observe(v);
        }
    }

    /// The histogram behind a handle (`None` when disabled).
    pub fn hist(&self, h: HistId) -> Option<&Hist> {
        if self.enabled {
            Some(&self.hists[h.0 as usize])
        } else {
            None
        }
    }

    /// Flatten the registry into a snapshot, in registration order.
    /// Counters merge by sum; gauges (high-water marks and point-in-time
    /// values) merge by max; a histogram flattens to `_count`/`_sum`
    /// (summed) and `_max` (maxed) entries.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries = Vec::new();
        if !self.enabled {
            return MetricsSnapshot { entries };
        }
        for (def, &v) in self.counter_defs.iter().zip(&self.counters) {
            entries.push(MetricEntry {
                name: def.name.to_string(),
                op: MergeOp::Add,
                value: v,
            });
        }
        for (def, &v) in self.gauge_defs.iter().zip(&self.gauges) {
            entries.push(MetricEntry {
                name: def.name.to_string(),
                op: MergeOp::Max,
                value: v,
            });
        }
        for (def, h) in self.hist_defs.iter().zip(&self.hists) {
            entries.push(MetricEntry {
                name: format!("{}_count", def.name),
                op: MergeOp::Add,
                value: h.count,
            });
            entries.push(MetricEntry {
                name: format!("{}_sum", def.name),
                op: MergeOp::Add,
                value: h.sum,
            });
            entries.push(MetricEntry {
                name: format!("{}_max", def.name),
                op: MergeOp::Max,
                value: h.max,
            });
        }
        MetricsSnapshot { entries }
    }
}

/// How an entry combines with the same-named entry of another snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// Sum the values (monotone counters).
    Add,
    /// Keep the larger value (gauges, high-water marks).
    Max,
}

/// One flattened metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    /// Dotted metric name.
    pub name: String,
    /// Cross-snapshot merge rule.
    pub op: MergeOp,
    /// The value.
    pub value: u64,
}

impl MetricEntry {
    /// A sum-merged entry (counter semantics).
    pub fn add(name: impl Into<String>, value: u64) -> Self {
        MetricEntry {
            name: name.into(),
            op: MergeOp::Add,
            value,
        }
    }

    /// A max-merged entry (gauge semantics).
    pub fn max(name: impl Into<String>, value: u64) -> Self {
        MetricEntry {
            name: name.into(),
            op: MergeOp::Max,
            value,
        }
    }
}

/// A flat, ordered collection of metric values — the exportable form of
/// one or many [`Registry`]s. Entry order is registration order and is
/// stable across runs, so [`MetricsSnapshot::render`] output is
/// byte-comparable between runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// The entries, in registration/merge order.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self`: same-named entries combine under their
    /// [`MergeOp`]; names new to `self` are appended in `other`'s order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for e in &other.entries {
            match self.entries.iter_mut().find(|m| m.name == e.name) {
                Some(m) => match m.op {
                    MergeOp::Add => m.value += e.value,
                    MergeOp::Max => m.value = m.value.max(e.value),
                },
                None => self.entries.push(e.clone()),
            }
        }
    }

    /// Value of the named entry, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
    }

    /// Deterministic text rendering: one `name value` line per entry, in
    /// snapshot order (byte-identical for equal snapshots).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "{:<width$}  {}", e.name, e.value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    mod demo {
        crate::metric_defs! {
            counters {
                HITS => "demo.hits": "Times something happened",
                BYTES => "demo.bytes": "Bytes moved",
            }
            gauges {
                DEPTH => "demo.depth": "Current depth",
                PEAK => "demo.peak": "Peak depth",
            }
            hists {
                SIZE => "demo.size": "Size distribution",
            }
        }
    }

    #[test]
    fn register_increment_snapshot() {
        let mut r = demo::registry();
        r.inc(demo::HITS);
        r.inc(demo::HITS);
        r.add(demo::BYTES, 100);
        r.gauge_add(demo::DEPTH, 3);
        r.gauge_sub(demo::DEPTH, 1);
        r.gauge_max(demo::PEAK, 3);
        r.gauge_max(demo::PEAK, 2);
        r.observe(demo::SIZE, 0);
        r.observe(demo::SIZE, 9);
        assert_eq!(r.counter(demo::HITS), 2);
        assert_eq!(r.counter(demo::BYTES), 100);
        assert_eq!(r.gauge(demo::DEPTH), 2);
        assert_eq!(r.gauge(demo::PEAK), 3);
        let h = r.hist(demo::SIZE).unwrap();
        assert_eq!((h.count, h.sum, h.max), (2, 9, 9));
        assert_eq!(h.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(h.buckets[4], 1, "9 has 4 significant bits");

        let s = r.snapshot();
        assert_eq!(s.get("demo.hits"), Some(2));
        assert_eq!(s.get("demo.bytes"), Some(100));
        assert_eq!(s.get("demo.depth"), Some(2));
        assert_eq!(s.get("demo.peak"), Some(3));
        assert_eq!(s.get("demo.size_count"), Some(2));
        assert_eq!(s.get("demo.size_sum"), Some(9));
        assert_eq!(s.get("demo.size_max"), Some(9));
        assert_eq!(s.get("demo.missing"), None);
    }

    #[test]
    fn handles_index_their_registration_order() {
        assert_eq!(demo::COUNTER_DEFS.len(), 2);
        assert_eq!(demo::COUNTER_DEFS[0].name, "demo.hits");
        assert_eq!(demo::COUNTER_DEFS[1].name, "demo.bytes");
        assert_eq!(demo::GAUGE_DEFS[1].name, "demo.peak");
        assert_eq!(demo::HIST_DEFS[0].name, "demo.size");
    }

    #[test]
    fn disabled_registry_is_a_no_op_without_storage() {
        let mut r = Registry::disabled(demo::COUNTER_DEFS, demo::GAUGE_DEFS, demo::HIST_DEFS);
        assert!(!r.is_enabled());
        r.inc(demo::HITS);
        r.add(demo::BYTES, 1 << 40);
        r.gauge_add(demo::DEPTH, 5);
        r.gauge_max(demo::PEAK, 5);
        r.observe(demo::SIZE, 12345);
        assert_eq!(r.counter(demo::HITS), 0);
        assert_eq!(r.gauge(demo::DEPTH), 0);
        assert!(r.hist(demo::SIZE).is_none());
        assert_eq!(r.snapshot().entries.len(), 0);
        // No storage was ever allocated for the disabled registry.
        assert_eq!(r.counters.capacity(), 0);
        assert_eq!(r.gauges.capacity(), 0);
        assert_eq!(r.hists.capacity(), 0);
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let snap = |hits: u64, peak: u64| {
            let mut r = demo::registry();
            r.add(demo::HITS, hits);
            r.gauge_max(demo::PEAK, peak);
            r.snapshot()
        };
        let mut a = snap(3, 10);
        let b = snap(4, 7);
        a.merge(&b);
        assert_eq!(a.get("demo.hits"), Some(7));
        assert_eq!(a.get("demo.peak"), Some(10));
        // Foreign names append in the other snapshot's order.
        let mut c = a.clone();
        c.merge(&MetricsSnapshot {
            entries: vec![MetricEntry::add("other.thing", 1)],
        });
        assert_eq!(c.get("other.thing"), Some(1));
        assert_eq!(c.entries.last().unwrap().name, "other.thing");
    }

    #[test]
    fn render_is_deterministic_and_ordered() {
        let mut r = demo::registry();
        r.inc(demo::HITS);
        let a = r.snapshot().render();
        let b = r.snapshot().render();
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].starts_with("demo.hits"));
        assert!(lines[0].ends_with(" 1"), "{a}");
    }

    #[test]
    fn engine_metric_set_is_well_formed() {
        let mut r = engine::registry();
        r.add(engine::EVENTS, 2);
        r.gauge_max(engine::QUEUE_PEAK, 5);
        let s = r.snapshot();
        assert_eq!(s.get("sim.events"), Some(2));
        assert_eq!(s.get("sim.queue_peak"), Some(5));
        assert_eq!(
            s.entries.len(),
            engine::COUNTER_DEFS.len() + engine::GAUGE_DEFS.len()
        );
    }
}
