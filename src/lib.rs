//! # viampi — MPI over (simulated) VIA with on-demand connection management
//!
//! A full reproduction of *"Impact of On-Demand Connection Management in
//! MPI over VIA"* (Wu, Liu, Wyckoff, Panda — IEEE CLUSTER 2002) as a Rust
//! workspace:
//!
//! * [`sim`] — deterministic virtual-time discrete-event engine;
//! * [`via`] — the Virtual Interface Architecture fabric (VIs, descriptors,
//!   completion queues, client/server + peer-to-peer connection models,
//!   RDMA write, cLAN and Berkeley-VIA device profiles);
//! * [`core`](mod@core) — the MVICH-like MPI implementation with static
//!   *and* on-demand connection management (the paper's contribution);
//! * [`npb`] — NAS-parallel-benchmark-like workloads and the paper's
//!   microbenchmarks.
//!
//! The most common types are re-exported at the crate root.
//!
//! ```
//! use viampi::{Universe, Device, ConnMode, WaitPolicy, ReduceOp};
//!
//! let report = Universe::new(8, Device::Clan, ConnMode::OnDemand, WaitPolicy::Polling)
//!     .run(|mpi| mpi.allreduce(&[mpi.rank() as i64], ReduceOp::Sum)[0])
//!     .unwrap();
//! assert!(report.results.iter().all(|&s| s == 28));
//! // Only the allreduce tree was connected, not the full mesh:
//! assert!(report.avg_vis() < 7.0);
//! ```

#![forbid(unsafe_code)]

pub use viampi_core::{
    from_bytes, to_bytes, Comm, ConnMode, Device, Mpi, MpiConfig, MpiStats, RankReport, ReduceOp,
    Request, RunReport, Scalar, SendMode, Status, Universe, WaitPolicy, ANY_SOURCE, ANY_TAG,
};

/// The simulation engine substrate.
pub mod sim {
    pub use viampi_sim::*;
}

/// The VIA fabric substrate.
pub mod via {
    pub use viampi_via::*;
}

/// The MPI implementation (full API surface).
pub mod core {
    pub use viampi_core::*;
}

/// Workloads: NPB-like kernels, microbenchmarks, pattern generators.
pub mod npb {
    pub use viampi_npb::*;
}
