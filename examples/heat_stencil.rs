//! A 2D heat-diffusion solver with halo exchange — the nearest-neighbour
//! communication pattern that motivates on-demand connection management
//! (paper §1, Table 1: most large applications talk to a handful of
//! neighbours, yet static MPI-over-VIA pins resources for everyone).
//!
//! The same solver runs under static and on-demand management; the physics
//! is identical, the resource bill is not.
//!
//! ```text
//! cargo run --release --example heat_stencil
//! ```

use viampi::{from_bytes, to_bytes, ConnMode, Device, Mpi, ReduceOp, Universe, WaitPolicy};

const N: usize = 64; // global grid side
const STEPS: usize = 50;

/// One rank's strip of the domain: rows `[r0, r0 + rows)` with halo rows.
fn solve(mpi: &Mpi) -> (f64, usize, usize) {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert_eq!(N % size, 0);
    let rows = N / size;
    let r0 = rank * rows;

    // Local field with one halo row above and below.
    let mut u = vec![0.0f64; (rows + 2) * N];
    // Hot spot in the global middle.
    for lr in 0..rows {
        for c in 0..N {
            let gr = r0 + lr;
            if (N / 2 - 4..N / 2 + 4).contains(&gr) && (N / 2 - 4..N / 2 + 4).contains(&c) {
                u[(lr + 1) * N + c] = 100.0;
            }
        }
    }

    for step in 0..STEPS {
        // Halo exchange with up/down neighbours (non-periodic).
        let tag = step as i32 % 2;
        if rank > 0 {
            let top = to_bytes(&u[N..2 * N]);
            let (recv, _) = mpi.sendrecv(&top, rank - 1, tag, Some(rank - 1), Some(tag));
            u[..N].copy_from_slice(&from_bytes::<f64>(&recv));
        }
        if rank + 1 < size {
            let bottom = to_bytes(&u[rows * N..(rows + 1) * N]);
            let (recv, _) = mpi.sendrecv(&bottom, rank + 1, tag, Some(rank + 1), Some(tag));
            u[(rows + 1) * N..].copy_from_slice(&from_bytes::<f64>(&recv));
        }
        // Jacobi sweep (real arithmetic + modelled flops).
        let mut next = u.clone();
        for lr in 1..=rows {
            let gr = r0 + lr - 1;
            for c in 1..N - 1 {
                if gr == 0 || gr == N - 1 {
                    continue;
                }
                let i = lr * N + c;
                next[i] = 0.25 * (u[i - 1] + u[i + 1] + u[i - N] + u[i + N]);
            }
        }
        u = next;
        mpi.compute((rows * N) as f64 * 4.0);
    }

    // Total heat (conserved up to boundary loss) via allreduce.
    let local: f64 = (1..=rows)
        .map(|lr| u[lr * N..(lr + 1) * N].iter().sum::<f64>())
        .sum();
    let total = mpi.allreduce(&[local], ReduceOp::Sum)[0];
    (total, mpi.live_vis(), mpi.nic_stats().pinned_peak)
}

fn main() {
    let np = 16;
    for (label, conn) in [
        ("static ", ConnMode::StaticPeerToPeer),
        ("ondemand", ConnMode::OnDemand),
    ] {
        let report = Universe::new(np, Device::Clan, conn, WaitPolicy::Polling)
            .run(solve)
            .unwrap();
        let (heat, _, _) = report.results[0];
        let avg_pinned: usize = report.results.iter().map(|r| r.2).sum::<usize>() / np;
        println!(
            "{label}  np={np}  total heat = {heat:10.3}  avg VIs/process = {:5.2}  \
             avg pinned = {:4} KiB  init = {}",
            report.avg_vis(),
            avg_pinned / 1024,
            report.avg_init_time(),
        );
    }
    println!();
    println!("identical physics; the stencil only ever talks to 2 neighbours,");
    println!(
        "so on-demand pins 2 VIs' worth of buffers instead of {}.",
        np - 1
    );
}
