//! Distributed sample sort over `alltoallv` — an all-to-all workload like
//! NPB IS, where even on-demand management ends up fully connected (paper
//! Table 2, utilization 1.0) but the connections are built *gradually* as
//! the first exchange unfolds (§5.5's note on IS over Berkeley VIA).
//!
//! ```text
//! cargo run --release --example sample_sort
//! ```

use viampi::{ConnMode, Device, Mpi, Universe, WaitPolicy};

fn sort_rank(mpi: &Mpi) -> (bool, usize) {
    let (rank, size) = (mpi.rank(), mpi.size());
    let n_local = 4000usize;

    // Deterministic pseudo-random local keys.
    let mut keys: Vec<u32> = (0..n_local)
        .map(|i| {
            let x = (rank * n_local + i) as u64;
            (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as u32
        })
        .collect();

    // 1. Everyone contributes samples; rank 0 picks splitters, broadcasts.
    let sample: Vec<u8> = keys
        .iter()
        .step_by(n_local / 16)
        .flat_map(|k| k.to_le_bytes())
        .collect();
    let gathered = mpi.gather(0, &sample);
    let splitters: Vec<u32> = {
        let bytes = if let Some(blocks) = gathered {
            let mut all: Vec<u32> = blocks
                .iter()
                .flat_map(|b| {
                    b.chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                })
                .collect();
            all.sort_unstable();
            let step = all.len() / size;
            let picks: Vec<u8> = (1..size)
                .flat_map(|i| all[i * step].to_le_bytes())
                .collect();
            mpi.bcast(0, Some(&picks))
        } else {
            mpi.bcast(0, None)
        };
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    };

    // 2. Partition keys by splitter and exchange all-to-all.
    let mut buckets: Vec<Vec<u8>> = vec![Vec::new(); size];
    for &k in &keys {
        let dst = splitters.partition_point(|&s| s <= k);
        buckets[dst].extend_from_slice(&k.to_le_bytes());
    }
    let received = mpi.alltoallv(&buckets);

    // 3. Local sort of the received range.
    keys = received
        .iter()
        .flat_map(|b| {
            b.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        })
        .collect();
    keys.sort_unstable();
    mpi.compute(keys.len() as f64 * 10.0);

    // 4. Verify global order across rank boundaries.
    let my_max = keys.last().copied().unwrap_or(0);
    let mut ok = keys.windows(2).all(|w| w[0] <= w[1]);
    if size > 1 {
        let next = (rank + 1) % size;
        let prev = (rank + size - 1) % size;
        let (pm, _) = mpi.sendrecv(&my_max.to_le_bytes(), next, 9, Some(prev), Some(9));
        let prev_max = u32::from_le_bytes(pm.try_into().unwrap());
        if rank > 0 {
            ok &= keys.first().map(|&f| prev_max <= f).unwrap_or(true);
        }
    }
    (ok, mpi.live_vis())
}

fn main() {
    let np = 12;
    let report = Universe::new(
        np,
        Device::Berkeley,
        ConnMode::OnDemand,
        WaitPolicy::Polling,
    )
    .run(sort_rank)
    .unwrap();
    let all_sorted = report.results.iter().all(|r| r.0);
    println!("sample sort on {np} Berkeley-VIA ranks: sorted = {all_sorted}");
    println!(
        "per-rank VIs after the all-to-all: {:?}",
        report.results.iter().map(|r| r.1).collect::<Vec<_>>()
    );
    println!(
        "all-to-all forces full connectivity ({} VIs each) even on-demand —\n\
         but every VI is used (utilization {:.0}%), unlike a static mesh under\n\
         a neighbour-only workload.",
        np - 1,
        report.utilization() * 100.0
    );
    assert!(all_sorted);
}
