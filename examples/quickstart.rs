//! Quickstart: run an 8-rank MPI program over simulated VIA with on-demand
//! connection management, and watch connections appear only where traffic
//! flows.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use viampi::{ConnMode, Device, ReduceOp, Universe, WaitPolicy};

fn main() {
    let np = 8;
    let uni = Universe::new(np, Device::Clan, ConnMode::OnDemand, WaitPolicy::Polling);

    let report = uni
        .run(|mpi| {
            let (rank, size) = (mpi.rank(), mpi.size());

            // Ring shift: everyone passes a greeting to the right.
            let next = (rank + 1) % size;
            let prev = (rank + size - 1) % size;
            let msg = format!("hello from rank {rank}");
            let (got, st) = mpi.sendrecv(msg.as_bytes(), next, 0, Some(prev), Some(0));
            assert_eq!(st.source, prev);
            let got = String::from_utf8(got).unwrap();

            // A global reduction.
            let total = mpi.allreduce(&[rank as i64 + 1], ReduceOp::Sum)[0];

            // What did this cost in connection resources?
            (got, total, mpi.live_vis(), mpi.nic_stats().pinned_peak)
        })
        .unwrap();

    println!(
        "simulated {np}-rank run finished at t = {}",
        report.end_time
    );
    println!();
    for (rank, (got, total, vis, pinned)) in report.results.iter().enumerate() {
        println!(
            "rank {rank}: received {got:?}, sum = {total}, VIs = {vis}, pinned = {} KiB",
            pinned / 1024
        );
    }
    println!();
    println!(
        "average VIs per process: {:.2} (a fully-connected static MPI would use {})",
        report.avg_vis(),
        np - 1
    );
    println!(
        "VI utilization: {:.0}% (paper Table 2: on-demand is always 100%)",
        report.utilization() * 100.0
    );
}
