//! Watch the on-demand connection machinery itself: pre-posted send FIFOs,
//! lazy VI creation, the `MPI_ANY_SOURCE` connect-to-all rule (§3.5), and
//! the init-time difference against both static models (Fig. 8).
//!
//! ```text
//! cargo run --release --example connection_trace
//! ```

use viampi::{ConnMode, Device, Universe, WaitPolicy, ANY_SOURCE};

fn main() {
    // --- Act 1: lazy connections + the pre-posted send FIFO (§3.4) -------
    let report = Universe::new(4, Device::Clan, ConnMode::OnDemand, WaitPolicy::Polling)
        .run(|mpi| {
            let mut log = Vec::new();
            match mpi.rank() {
                0 => {
                    log.push(format!("t={} VIs={}", mpi.now(), mpi.live_vis()));
                    // Burst of sends *before* any connection exists: all are
                    // held in the per-VI FIFO, none is lost to the VIA
                    // unconnected-send discard rule.
                    let reqs: Vec<_> = (0..10u8).map(|i| mpi.isend(&[i], 1, 0)).collect();
                    log.push(format!(
                        "posted 10 isends; fifo-deferred={} drops={}",
                        mpi.mpi_stats().fifo_deferred_sends,
                        mpi.nic_stats().drops_unconnected
                    ));
                    mpi.waitall(&reqs);
                    log.push(format!(
                        "t={} all sends complete, VIs={}",
                        mpi.now(),
                        mpi.live_vis()
                    ));
                }
                1 => {
                    for i in 0..10u8 {
                        let (d, _) = mpi.recv(Some(0), Some(0));
                        assert_eq!(d, [i], "FIFO preserved MPI order");
                    }
                    log.push("received 10 messages in order".into());
                }
                2 => {
                    // ANY_SOURCE: must connect to everyone (§3.5).
                    let before = mpi.live_vis();
                    let (d, st) = mpi.recv(ANY_SOURCE, Some(7));
                    log.push(format!(
                        "ANY_SOURCE recv: VIs {before} -> {} (connected to all), \
                         got {:?} from rank {}",
                        mpi.live_vis(),
                        d,
                        st.source
                    ));
                }
                _ => {
                    mpi.advance(viampi::sim::SimDuration::millis(1));
                    mpi.send(b"x", 2, 7);
                }
            }
            log.join("\n  ")
        })
        .unwrap();
    println!("== on-demand mechanics ==");
    for (rank, log) in report.results.iter().enumerate() {
        println!("rank {rank}:\n  {log}");
    }

    // --- Act 2: init time across the three managers (Fig. 8) -------------
    println!("\n== MPI_Init time, np = 12 (Fig. 8) ==");
    for mode in [
        ConnMode::StaticClientServer,
        ConnMode::StaticPeerToPeer,
        ConnMode::OnDemand,
    ] {
        let r = Universe::new(12, Device::Clan, mode, WaitPolicy::Polling)
            .run(|_| ())
            .unwrap();
        println!(
            "  {:10}  init = {:>12}  connections at init = {}",
            mode.name(),
            format!("{}", r.avg_init_time()),
            r.ranks[0].mpi.conns_at_init
        );
    }
}
